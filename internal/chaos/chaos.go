// Package chaos provides deterministic fault injection for the engine's
// failure model: a seeded Plan assigns each graph of a workload at most
// one fault — a panic inside Compute, an artificial delay, or a
// cancellation fired from inside Compute — as a pure function of (seed,
// graph index). The same seed always poisons the same graphs at the same
// nodes, so the faults harness experiment and the -race stress tests are
// reproducible, and a plan at rate 0 is byte-for-byte a no-op.
package chaos

import (
	"fmt"
	"time"

	"nabbitc/internal/core"
	"nabbitc/internal/xrand"
)

// Kind is the fault injected into one graph.
type Kind int

const (
	// None leaves the graph healthy.
	None Kind = iota
	// Panic makes the target node's Compute panic with a Value payload.
	Panic
	// Delay makes the target node's Compute sleep briefly — a
	// perturbation, not a failure; the graph still completes.
	Delay
	// Cancel invokes the injector's OnCancel hook from inside the
	// target node's Compute, modelling a tenant abandoning its graph
	// mid-flight.
	Cancel
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Cancel:
		return "cancel"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is the payload a chaos-injected panic carries, identifying the
// poisoned graph and node so tests can verify the value round-trips
// through core.ComputeError untouched.
type Value struct {
	Graph int
	Key   core.Key
}

func (v Value) String() string {
	return fmt.Sprintf("chaos: injected panic in graph %d at node %d", v.Graph, v.Key)
}

// Plan deterministically assigns faults to graph indices: graph g is
// poisoned with probability rate (decided by hashing seed and g), and a
// poisoned graph's fault kind and target node rotate among the plan's
// kinds by the same hashing. Plans are immutable and safe for concurrent
// use.
type Plan struct {
	seed  uint64
	rate  float64
	kinds []Kind
}

// NewPlan builds a plan poisoning roughly rate of all graphs with faults
// drawn from kinds. rate 0 (or no kinds) yields a plan that never
// injects anything.
func NewPlan(seed uint64, rate float64, kinds ...Kind) *Plan {
	return &Plan{seed: seed, rate: rate, kinds: kinds}
}

// hash is a SplitMix64 draw keyed by (seed, graph, salt) — stateless, so
// every query about a graph is independent of query order.
func (p *Plan) hash(graph int, salt uint64) uint64 {
	s := p.seed ^ (uint64(graph)+1)*0x9e3779b97f4a7c15 ^ salt
	return xrand.SplitMix64(&s)
}

// Fault returns the fault assigned to graph (None for healthy graphs).
func (p *Plan) Fault(graph int) Kind {
	if len(p.kinds) == 0 || p.rate <= 0 {
		return None
	}
	// 53 uniform bits → [0,1): the standard float draw, fixed per graph.
	if float64(p.hash(graph, 0xfa)>>11)/(1<<53) >= p.rate {
		return None
	}
	return p.kinds[p.hash(graph, 0x95)%uint64(len(p.kinds))]
}

// Target returns the ordinal (in [0, nodes)) of the node within graph
// that the graph's fault strikes.
func (p *Plan) Target(graph, nodes int) int {
	if nodes <= 0 {
		return 0
	}
	return int(p.hash(graph, 0x7a) % uint64(nodes))
}

// DefaultDelay is the injected sleep for Delay faults when the Injector
// does not override it: long enough to perturb scheduling interleavings,
// short enough to keep chaos runs fast.
const DefaultDelay = 50 * time.Microsecond

// Injector wires a Plan into a spec whose keys form a forest of
// per-graph ranges: key k belongs to graph k/Stride at ordinal k%Stride
// (the cone-forest layout the multi-tenant tests and harness use). Wrap
// the spec's Compute with Injector.Compute; the target node of each
// poisoned graph then panics, sleeps, or triggers OnCancel before the
// base compute runs.
type Injector struct {
	Plan   *Plan
	Stride int
	// OnCancel handles Cancel faults (e.g. call the graph's
	// context.CancelFunc or Ticket.Cancel). A nil OnCancel turns Cancel
	// faults into no-ops.
	OnCancel func(graph int)
	// Delay overrides DefaultDelay for Delay faults when positive.
	Delay time.Duration
}

// Compute wraps base with the injector's faults; base may be nil.
func (in *Injector) Compute(base func(core.Key)) func(core.Key) {
	return func(k core.Key) {
		g, ord := int(k)/in.Stride, int(k)%in.Stride
		if fault := in.Plan.Fault(g); fault != None && ord == in.Plan.Target(g, in.Stride) {
			switch fault {
			case Panic:
				panic(Value{Graph: g, Key: k})
			case Delay:
				d := in.Delay
				if d <= 0 {
					d = DefaultDelay
				}
				time.Sleep(d)
			case Cancel:
				if in.OnCancel != nil {
					in.OnCancel(g)
				}
			}
		}
		if base != nil {
			base(k)
		}
	}
}
