package nabbitc

import (
	"testing"

	"nabbitc/internal/harness"
	"nabbitc/internal/perf"
)

// TestCheckedInBaseline keeps testdata/baseline-small.json honest: it
// must decode under the current schema, be a sim-kind document, and cover
// exactly the harness's experiment set. Metric drift is judged by the CI
// bench-smoke job (advisory), but a baseline that no longer matches the
// schema or the experiment list must be regenerated in the same PR:
//
//	go run ./cmd/nabbitbench -experiment all -scale small -cores 1,20,80 \
//	    -format json -out testdata/baseline-small.json
func TestCheckedInBaseline(t *testing.T) {
	doc, err := perf.Load("testdata/baseline-small.json")
	if err != nil {
		t.Fatalf("baseline does not load under schema v%d: %v", perf.SchemaVersion, err)
	}
	if doc.Kind != perf.KindSim {
		t.Fatalf("baseline kind = %q, want %q", doc.Kind, perf.KindSim)
	}
	if doc.Revision != "" || doc.CreatedAt != "" {
		t.Fatalf("baseline must be stamp-free for determinism (revision=%q created_at=%q)",
			doc.Revision, doc.CreatedAt)
	}
	got := make([]string, len(doc.Reports))
	for i, rep := range doc.Reports {
		got[i] = rep.Experiment
	}
	want := harness.Experiments()
	if len(got) != len(want) {
		t.Fatalf("baseline covers %v, harness has %v — regenerate it", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("baseline covers %v, harness has %v — regenerate it", got, want)
		}
	}
}
