// Command graphgen generates a synthetic web crawl and prints its degree
// statistics and block dependence density — useful for sanity-checking
// the PageRank substitutes against the real datasets' published stats.
//
//	graphgen -dataset uk-2002 -nv 60000 -blocks 180
//
// Exit codes: 0 success, 1 generation failure, 2 usage error. All flags
// are validated up front (the nabbitbench convention): a bad -nv or
// -blocks fails in microseconds with a usage error rather than crashing
// mid-generation or printing NaN statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"nabbitc/internal/graphs"
)

// usageError prints the message and exits 2 (flag misuse).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func main() {
	dataset := flag.String("dataset", "uk-2002", "uk-2002, twitter-2010, or uk-2007-05")
	nv := flag.Int("nv", 60000, "vertex count")
	blocks := flag.Int("blocks", 180, "blocks for dependence-density report")
	flag.Parse()

	// Validate everything before any generation work. A non-positive -nv
	// used to crash inside the generator and a non-positive -blocks made
	// InBlocks(0) panic (or the density report divide by zero into NaN).
	if flag.NArg() > 0 {
		usageError("unexpected argument %q", flag.Arg(0))
	}
	if *nv < 1 {
		usageError("bad vertex count %d (-nv must be >= 1)", *nv)
	}
	if *blocks < 1 {
		usageError("bad block count %d (-blocks must be >= 1)", *blocks)
	}
	if *blocks > *nv {
		usageError("bad block count %d (-blocks must be <= -nv %d: a block needs at least one vertex)",
			*blocks, *nv)
	}

	var cfg graphs.WebConfig
	switch *dataset {
	case "uk-2002":
		cfg = graphs.UK2002(*nv)
	case "twitter-2010":
		cfg = graphs.Twitter2010(*nv)
	case "uk-2007-05":
		cfg = graphs.UK2007(*nv)
	default:
		usageError("unknown dataset %q (have uk-2002, twitter-2010, uk-2007-05)", *dataset)
	}

	g, err := graphs.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := g.Stats()
	fmt.Printf("dataset      %s-like (seed %d)\n", *dataset, cfg.Seed)
	fmt.Printf("vertices     %d\n", st.NV)
	fmt.Printf("edges        %d\n", st.NE)
	fmt.Printf("avg out-deg  %.2f\n", st.AvgOut)
	fmt.Printf("median out   %d\n", st.MedianOut)
	fmt.Printf("p99 out      %d\n", st.P99Out)
	fmt.Printf("max out      %d (%.0fx avg)\n", st.MaxOut, float64(st.MaxOut)/st.AvgOut)

	sets := g.InBlocks(*blocks)
	total := 0
	max := 0
	for _, s := range sets {
		total += len(s)
		if len(s) > max {
			max = len(s)
		}
	}
	fmt.Printf("block in-deps avg %.1f / max %d of %d blocks\n",
		float64(total)/float64(len(sets)), max, *blocks)
}
