// Command taskviz emits a Graphviz DOT rendering of a benchmark's task
// graph (small scale), with tasks colored by their NabbitC color — handy
// for inspecting the dependence structures the scheduler sees.
//
//	taskviz -bench heat -p 4 | dot -Tsvg > heat.svg
//
// Exit codes: 0 success, 1 graph failure (e.g. more nodes than -max),
// 2 usage error. Flags are validated up front, the nabbitbench
// convention: a non-positive -p or -max and an unknown benchmark are
// flag misuse (exit 2), not runtime failures.
package main

import (
	"flag"
	"fmt"
	"os"

	"nabbitc/internal/bench"
	"nabbitc/internal/bench/suite"
	"nabbitc/internal/core"
)

// palette cycles for worker colors.
var palette = []string{
	"lightblue", "lightpink", "lightgreen", "khaki",
	"plum", "lightsalmon", "paleturquoise", "lightgray",
}

// usageError prints the message and exits 2 (flag misuse).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func main() {
	name := flag.String("bench", "heat", "benchmark to render (small scale)")
	p := flag.Int("p", 4, "worker count for the coloring")
	maxNodes := flag.Int("max", 2000, "abort if the graph exceeds this many nodes")
	flag.Parse()

	// Validate before building anything: -p <= 0 used to flow into the
	// coloring as a nonsense worker count and -max <= 0 rejected every
	// graph with a confusing exit 1.
	if flag.NArg() > 0 {
		usageError("unexpected argument %q", flag.Arg(0))
	}
	if *p < 1 {
		usageError("bad worker count %d (-p must be >= 1)", *p)
	}
	if *maxNodes < 1 {
		usageError("bad node limit %d (-max must be >= 1)", *maxNodes)
	}

	b, err := suite.Build(*name, bench.ScaleSmall)
	if err != nil {
		usageError("%v", err)
	}
	spec, sink := b.Model(*p)
	order, err := core.TopoOrder(spec, sink, *maxNodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("digraph %q {\n  rankdir=BT;\n  node [style=filled];\n", *name)
	for _, k := range order {
		c := spec.Color(k)
		fill := "white"
		if c >= 0 {
			fill = palette[c%len(palette)]
		}
		fmt.Printf("  n%d [label=%q fillcolor=%s];\n", k, fmt.Sprintf("%d (c%d)", k, c), fill)
		for _, pk := range spec.Predecessors(k) {
			fmt.Printf("  n%d -> n%d;\n", pk, k)
		}
	}
	fmt.Println("}")
}
