// Command taskviz emits a Graphviz DOT rendering of a benchmark's task
// graph (small scale), with tasks colored by their NabbitC color — handy
// for inspecting the dependence structures the scheduler sees.
//
//	taskviz -bench heat -p 4 | dot -Tsvg > heat.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"nabbitc/internal/bench"
	"nabbitc/internal/bench/suite"
	"nabbitc/internal/core"
)

// palette cycles for worker colors.
var palette = []string{
	"lightblue", "lightpink", "lightgreen", "khaki",
	"plum", "lightsalmon", "paleturquoise", "lightgray",
}

func main() {
	name := flag.String("bench", "heat", "benchmark to render (small scale)")
	p := flag.Int("p", 4, "worker count for the coloring")
	maxNodes := flag.Int("max", 2000, "abort if the graph exceeds this many nodes")
	flag.Parse()

	b, err := suite.Build(*name, bench.ScaleSmall)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec, sink := b.Model(*p)
	order, err := core.TopoOrder(spec, sink, *maxNodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("digraph %q {\n  rankdir=BT;\n  node [style=filled];\n", *name)
	for _, k := range order {
		c := spec.Color(k)
		fill := "white"
		if c >= 0 {
			fill = palette[c%len(palette)]
		}
		fmt.Printf("  n%d [label=%q fillcolor=%s];\n", k, fmt.Sprintf("%d (c%d)", k, c), fill)
		for _, pk := range spec.Predecessors(k) {
			fmt.Printf("  n%d -> n%d;\n", pk, k)
		}
	}
	fmt.Println("}")
}
