package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The -deque flag must be validated before any workload runs, in both the
// experiment and bench modes: an unknown backend is a usage error (exit
// 2), never a fallback to some default substrate.
func TestDequeFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func([]string) int
		args []string
		want int
	}{
		{"experiments/bogus", runExperiments, []string{"-deque", "bogus"}, 2},
		{"experiments/empty", runExperiments, []string{"-deque", ""}, 2},
		{"bench/bogus", runBench, []string{"-deque", "bogus"}, 2},
		{"bench/casing", runBench, []string{"-deque", "ChaseLev"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(tc.args); got != tc.want {
				t.Fatalf("%v: exit %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// A valid -deque value must reach the harness: the steal experiment runs
// to completion (exit 0) and emits parseable output under every backend
// name the flag documents.
func TestDequeFlagAccepted(t *testing.T) {
	for _, dq := range []string{"auto", "mutex", "chaselev", "block"} {
		t.Run(dq, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "steal.json")
			args := []string{
				"-experiment", "steal", "-scale", "small",
				"-deque", dq, "-format", "json", "-out", out,
			}
			if got := runExperiments(args); got != 0 {
				t.Fatalf("%v: exit %d, want 0", args, got)
			}
			if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
				t.Fatalf("%v: no output written (err=%v)", args, err)
			}
		})
	}
}
