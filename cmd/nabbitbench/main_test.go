package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The -deque flag must be validated before any workload runs, in both the
// experiment and bench modes: an unknown backend is a usage error (exit
// 2), never a fallback to some default substrate.
func TestDequeFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func([]string) int
		args []string
		want int
	}{
		{"experiments/bogus", runExperiments, []string{"-deque", "bogus"}, 2},
		{"experiments/empty", runExperiments, []string{"-deque", ""}, 2},
		{"bench/bogus", runBench, []string{"-deque", "bogus"}, 2},
		{"bench/casing", runBench, []string{"-deque", "ChaseLev"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(tc.args); got != tc.want {
				t.Fatalf("%v: exit %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// The chaos trio -fault-rate/-fault-kinds/-retries must be validated
// before any workload runs, in both modes: out-of-range rates, unknown
// kind names, and oversized retry budgets are usage errors (exit 2).
func TestFaultFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func([]string) int
		args []string
		want int
	}{
		{"experiments/rate-too-high", runExperiments, []string{"-fault-rate", "1.5"}, 2},
		{"experiments/rate-nan", runExperiments, []string{"-fault-rate", "NaN"}, 2},
		{"experiments/kinds-bogus", runExperiments, []string{"-fault-kinds", "transient,bogus"}, 2},
		{"experiments/kinds-casing", runExperiments, []string{"-fault-kinds", "Transient"}, 2},
		{"experiments/retries-negative", runExperiments, []string{"-retries", "-1"}, 2},
		{"experiments/retries-over-cap", runExperiments, []string{"-retries", "9"}, 2},
		{"bench/rate-too-high", runBench, []string{"-fault-rate", "2"}, 2},
		{"bench/kinds-bogus", runBench, []string{"-fault-kinds", "segfault"}, 2},
		{"bench/retries-over-cap", runBench, []string{"-retries", "100"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(tc.args); got != tc.want {
				t.Fatalf("%v: exit %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// Valid fault overrides must reach the harness: the retry experiment runs
// to completion with an overridden rate, kind set, and attempt budget,
// and emits parseable output.
func TestFaultFlagsAccepted(t *testing.T) {
	out := filepath.Join(t.TempDir(), "retry.json")
	args := []string{
		"-experiment", "retry", "-scale", "small",
		"-fault-rate", "0.25", "-fault-kinds", "transient,error", "-retries", "4",
		"-format", "json", "-out", out,
	}
	if got := runExperiments(args); got != 0 {
		t.Fatalf("%v: exit %d, want 0", args, got)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("%v: no output written (err=%v)", args, err)
	}
}

// A valid -deque value must reach the harness: the steal experiment runs
// to completion (exit 0) and emits parseable output under every backend
// name the flag documents.
func TestDequeFlagAccepted(t *testing.T) {
	for _, dq := range []string{"auto", "mutex", "chaselev", "block"} {
		t.Run(dq, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "steal.json")
			args := []string{
				"-experiment", "steal", "-scale", "small",
				"-deque", dq, "-format", "json", "-out", out,
			}
			if got := runExperiments(args); got != 0 {
				t.Fatalf("%v: exit %d, want 0", args, got)
			}
			if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
				t.Fatalf("%v: no output written (err=%v)", args, err)
			}
		})
	}
}
