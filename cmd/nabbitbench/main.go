// Command nabbitbench regenerates the paper's experiments on the
// simulated NUMA machine, emits structured JSON reports, and gates new
// results against checked-in baselines.
//
// Usage:
//
//	nabbitbench -experiment fig6                 # one experiment
//	nabbitbench -experiment all                  # everything
//	nabbitbench -experiment fig7 -bench heat,cg  # restrict benchmarks
//	nabbitbench -experiment fig6 -cores 1,20,80 -format csv
//	nabbitbench -experiment table2 -scale small  # quick run
//	nabbitbench -experiment submit               # multi-tenant Submit/Wait census
//	nabbitbench -experiment all -scale small -format json -out r.json
//
//	nabbitbench compare BASELINE.json NEW.json   # perf gate: exit 1 on regression
//	nabbitbench compare -tol 0.02 -strict a.json b.json
//	nabbitbench validate r.json                  # schema check: exit 2 on error
//	nabbitbench bench -scale small               # wall-clock real-engine suite
//	                                             # (emits BENCH_<rev>.json)
//
// The experiment and bench modes accept -cpuprofile/-memprofile to write
// pprof profiles of the run alongside its report output, -seed to
// override the scheduling seed (checked-in baselines use the default),
// -iterations to size the persistent-engine reuse measurements (the
// persist experiment / the bench mode's wallclock persist rows), and the
// chaos trio -fault-rate/-fault-kinds/-retries to override the fault
// injection of the retry experiment and to arm it in the bench mode's
// submit table (baselines use the defaults). All flags are validated
// before any workload runs, including that -out's parent directory
// exists.
//
// Exit codes: 0 success, 1 perf regression (compare), 2 usage or schema
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"nabbitc/internal/bench"
	"nabbitc/internal/bench/suite"
	"nabbitc/internal/chaos"
	"nabbitc/internal/core"
	"nabbitc/internal/harness"
	"nabbitc/internal/perf"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "compare":
			os.Exit(runCompare(os.Args[2:]))
		case "validate":
			os.Exit(runValidate(os.Args[2:]))
		case "bench":
			os.Exit(runBench(os.Args[2:]))
		}
	}
	os.Exit(runExperiments(os.Args[1:]))
}

// fail prints to stderr and returns the given exit code.
func fail(code int, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	return code
}

// checkOutPath validates an -out destination before any workload runs:
// a typo'd directory should fail in milliseconds, not after minutes of
// simulation. "" and "-" mean stdout and are always fine.
func checkOutPath(path string) error {
	if path == "" || path == "-" {
		return nil
	}
	dir := filepath.Dir(path)
	info, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("output directory %q does not exist", dir)
	}
	if !info.IsDir() {
		return fmt.Errorf("output parent %q is not a directory", dir)
	}
	return nil
}

// checkSeed validates a -seed value (the flag is signed so that a typo'd
// negative number errors instead of wrapping to a huge seed).
func checkSeed(seed int64) error {
	if seed < 0 {
		return fmt.Errorf("bad seed %d (must be >= 0; 0 = policy default)", seed)
	}
	return nil
}

// checkIterations validates an -iterations value (0 = default).
func checkIterations(iters int) error {
	if iters < 0 {
		return fmt.Errorf("bad iteration count %d (must be >= 0; 0 = default)", iters)
	}
	const max = 1 << 20
	if iters > max {
		return fmt.Errorf("bad iteration count %d (max %d)", iters, max)
	}
	return nil
}

// faultFlags registers the chaos-injection flags shared by the
// experiment and bench modes — -fault-rate, -fault-kinds, -retries —
// and returns a hook that validates them up front (exit-2 material,
// before any workload runs) and resolves the override set.
func faultFlags(fs *flag.FlagSet) (resolve func() (rate float64, rateSet bool, kinds []chaos.Kind, retries int, err error)) {
	rate := fs.Float64("fault-rate", -1,
		"chaos fault-injection rate in [0, 1] (retry experiment / bench submit table; negative = keep defaults)")
	kindsFlag := fs.String("fault-kinds", "",
		"comma-separated chaos fault kinds to inject (panic, delay, cancel, error, transient, hang; default transient)")
	retries := fs.Int("retries", 0,
		fmt.Sprintf("per-node attempt budget for fault-injected runs (0 = default 3, max %d)", core.MaxRetryAttempts))
	return func() (float64, bool, []chaos.Kind, int, error) {
		if math.IsNaN(*rate) || *rate > 1 {
			return 0, false, nil, 0, fmt.Errorf("bad fault rate %v (must be in [0, 1], or negative to keep defaults)", *rate)
		}
		kinds, err := chaos.ParseKinds(*kindsFlag)
		if err != nil {
			return 0, false, nil, 0, err
		}
		if *retries < 0 || *retries > core.MaxRetryAttempts {
			return 0, false, nil, 0, fmt.Errorf("bad retry budget %d (must be in [0, %d]; 0 = default)", *retries, core.MaxRetryAttempts)
		}
		return *rate, *rate >= 0, kinds, *retries, nil
	}
}

// checkWorkers validates a -workers value (0 = auto).
func checkWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("bad worker count %d (must be >= 0; 0 = auto)", workers)
	}
	const max = 4096
	if workers > max {
		return fmt.Errorf("bad worker count %d (max %d)", workers, max)
	}
	return nil
}

// openOut returns the output writer for -out ("" or "-" = stdout).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// profileFlags registers -cpuprofile/-memprofile on fs and returns
// start/finish hooks bracketing the profiled work: start begins the CPU
// profile, finish stops it and writes the heap profile. Both are no-ops
// for unset flags, so the emit → compare workflow can capture pprof
// profiles from any mode without changing its output.
func profileFlags(fs *flag.FlagSet) (start func() error, finish func() error) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile to this file")
	mem := fs.String("memprofile", "", "write a heap profile to this file on exit")
	start = func() error {
		if *cpu == "" {
			return nil
		}
		f, err := os.Create(*cpu)
		if err != nil {
			return err
		}
		return pprof.StartCPUProfile(f)
	}
	finish = func() error {
		if *cpu != "" {
			pprof.StopCPUProfile()
		}
		if *mem == "" {
			return nil
		}
		f, err := os.Create(*mem)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize the live heap before snapshotting
		return pprof.WriteHeapProfile(f)
	}
	return start, finish
}

func parseScale(s string) (bench.Scale, error) {
	switch s {
	case "default":
		return bench.ScaleDefault, nil
	case "small":
		return bench.ScaleSmall, nil
	}
	return 0, fmt.Errorf("unknown scale %q (have default, small)", s)
}

func runExperiments(args []string) int {
	fs := flag.NewFlagSet("nabbitbench", flag.ExitOnError)
	experiment := fs.String("experiment", "all",
		fmt.Sprintf("experiment to run: %s, or all", strings.Join(harness.Experiments(), ", ")))
	benches := fs.String("bench", "",
		fmt.Sprintf("comma-separated benchmarks (default all: %s)", strings.Join(suite.Names(), ",")))
	cores := fs.String("cores", "", "comma-separated core counts (default 1,2,4,10,20,40,60,80)")
	scale := fs.String("scale", "default", "benchmark scale: default or small")
	format := fs.String("format", "",
		fmt.Sprintf("output format: %s (default table)", strings.Join(harness.Formats(), ", ")))
	csv := fs.Bool("csv", false, "emit CSV (deprecated: use -format csv)")
	seed := fs.Int64("seed", 0, "scheduling seed override (0 = policy default)")
	dequeFlag := fs.String("deque", "auto",
		"deque backend override: auto, mutex, chaselev, or block (auto = per-policy resolution)")
	iterations := fs.Int("iterations", 0,
		"engine-reuse iterations for the persist experiment (0 = default 4)")
	out := fs.String("out", "", "write output to this file instead of stdout")
	faultResolve := faultFlags(fs)
	profStart, profFinish := profileFlags(fs)
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fail(2, "unexpected argument %q (modes: compare, validate, bench)", fs.Arg(0))
	}

	// Validate everything up front, before any experiment runs.
	if !harness.ValidExperiment(*experiment) {
		return fail(2, "unknown experiment %q (have %s, all)",
			*experiment, strings.Join(harness.Experiments(), ", "))
	}
	if err := checkSeed(*seed); err != nil {
		return fail(2, "%v", err)
	}
	dq, err := core.ParseDequeBackend(*dequeFlag)
	if err != nil {
		return fail(2, "%v", err)
	}
	if err := checkIterations(*iterations); err != nil {
		return fail(2, "%v", err)
	}
	faultRate, faultRateSet, faultKinds, retries, err := faultResolve()
	if err != nil {
		return fail(2, "%v", err)
	}
	if err := checkOutPath(*out); err != nil {
		return fail(2, "%v", err)
	}
	cfg := harness.Config{
		CSV: *csv, Format: *format, Seed: uint64(*seed), Deque: dq, Iterations: *iterations,
		FaultRate: faultRate, FaultRateSet: faultRateSet, FaultKinds: faultKinds, Retries: retries,
	}
	sc, err := parseScale(*scale)
	if err != nil {
		return fail(2, "%v", err)
	}
	cfg.Scale = sc
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
		for _, b := range cfg.Benchmarks {
			if _, err := suite.Build(b, cfg.Scale); err != nil {
				return fail(2, "%v", err)
			}
		}
	}
	if *cores != "" {
		for _, c := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n < 1 {
				return fail(2, "bad core count %q", c)
			}
			cfg.Cores = append(cfg.Cores, n)
		}
	}
	w, closeOut, err := openOut(*out)
	if err != nil {
		return fail(2, "%v", err)
	}
	cfg.Out = w
	if err := profStart(); err != nil {
		closeOut()
		return fail(2, "%v", err)
	}
	if err := harness.Run(*experiment, cfg); err != nil {
		profFinish()
		closeOut()
		return fail(1, "%v", err)
	}
	if err := profFinish(); err != nil {
		closeOut()
		return fail(1, "%v", err)
	}
	if err := closeOut(); err != nil {
		return fail(1, "%v", err)
	}
	return 0
}

func runCompare(args []string) int {
	fs := flag.NewFlagSet("nabbitbench compare", flag.ExitOnError)
	tol := fs.Float64("tol", perf.DefaultTolerance,
		"allowed relative worsening per metric (0.05 = 5%); 0 gates exactly")
	strict := fs.Bool("strict", false,
		"fail on ANY value change (determinism check for sim documents)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fail(2, "usage: nabbitbench compare [-tol T] [-strict] BASELINE.json NEW.json")
	}
	base, err := perf.Load(fs.Arg(0))
	if err != nil {
		return fail(2, "baseline: %v", err)
	}
	cur, err := perf.Load(fs.Arg(1))
	if err != nil {
		return fail(2, "new: %v", err)
	}
	opts := perf.Options{Tolerance: *tol, Strict: *strict}
	if *tol <= 0 {
		// Options treats 0 as "use the default", so an explicit -tol 0
		// (or any negative) must be passed through as the exact gate.
		opts.Tolerance = -1
	}
	c, err := perf.Compare(base, cur, opts)
	if err != nil {
		return fail(2, "%v", err)
	}
	c.WriteText(os.Stdout)
	if !c.Ok() {
		return 1
	}
	return 0
}

func runValidate(args []string) int {
	fs := flag.NewFlagSet("nabbitbench validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fail(2, "usage: nabbitbench validate FILE.json")
	}
	doc, err := perf.Load(fs.Arg(0))
	if err != nil {
		return fail(2, "%v", err)
	}
	var tables, rows int
	for _, rep := range doc.Reports {
		tables += len(rep.Tables)
		for _, t := range rep.Tables {
			rows += len(t.Rows)
		}
	}
	fmt.Printf("%s: ok (schema v%d, kind %s, %d reports, %d tables, %d rows)\n",
		fs.Arg(0), doc.SchemaVersion, doc.Kind, len(doc.Reports), tables, rows)
	return 0
}

// gitRevision returns the short HEAD hash, or "local" when git is
// unavailable (the runner must work from exported tarballs too).
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "local"
	}
	return strings.TrimSpace(string(out))
}

func runBench(args []string) int {
	fs := flag.NewFlagSet("nabbitbench bench", flag.ExitOnError)
	benches := fs.String("bench", "",
		fmt.Sprintf("comma-separated benchmarks (default all: %s)", strings.Join(suite.Names(), ",")))
	scale := fs.String("scale", "small", "benchmark scale: default or small")
	workers := fs.Int("workers", 0, "host workers (default min(8, NumCPU))")
	repeats := fs.Int("repeats", 3, "runs per configuration; min wall time is reported")
	seed := fs.Int64("seed", 0, "scheduling seed override (0 = policy default)")
	dequeFlag := fs.String("deque", "auto",
		"deque backend override: auto, mutex, chaselev, or block (auto = per-policy resolution)")
	iterations := fs.Int("iterations", 0,
		"engine-reuse iterations for the persist rows (0 = default 8, negative disables)")
	rev := fs.String("rev", "", "revision stamp (default: git short hash, else \"local\")")
	out := fs.String("out", "", "output file (default BENCH_<rev>.json)")
	faultResolve := faultFlags(fs)
	profStart, profFinish := profileFlags(fs)
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fail(2, "unexpected argument %q", fs.Arg(0))
	}
	if err := checkWorkers(*workers); err != nil {
		return fail(2, "%v", err)
	}
	if err := checkSeed(*seed); err != nil {
		return fail(2, "%v", err)
	}
	dq, err := core.ParseDequeBackend(*dequeFlag)
	if err != nil {
		return fail(2, "%v", err)
	}
	if *iterations > 0 {
		if err := checkIterations(*iterations); err != nil {
			return fail(2, "%v", err)
		}
	}
	faultRate, faultRateSet, faultKinds, retries, err := faultResolve()
	if err != nil {
		return fail(2, "%v", err)
	}
	if err := checkOutPath(*out); err != nil {
		return fail(2, "%v", err)
	}
	cfg := harness.WallclockConfig{
		Workers: *workers, Repeats: *repeats, Revision: *rev,
		Seed: uint64(*seed), Deque: dq, Iterations: *iterations,
		FaultRate: faultRate, FaultRateSet: faultRateSet, FaultKinds: faultKinds, Retries: retries,
	}
	sc, err := parseScale(*scale)
	if err != nil {
		return fail(2, "%v", err)
	}
	cfg.Scale = sc
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
		for _, b := range cfg.Benchmarks {
			if _, err := suite.Build(b, cfg.Scale); err != nil {
				return fail(2, "%v", err)
			}
		}
	}
	if cfg.Revision == "" {
		cfg.Revision = gitRevision()
	}
	if err := profStart(); err != nil {
		return fail(2, "%v", err)
	}
	doc, err := harness.WallclockDocument(cfg)
	if perr := profFinish(); err == nil && perr != nil {
		err = perr
	}
	if err != nil {
		return fail(1, "%v", err)
	}
	path := *out
	if path == "" {
		path = "BENCH_" + cfg.Revision + ".json"
	}
	if path == "-" {
		if err := perf.Encode(os.Stdout, doc); err != nil {
			return fail(1, "%v", err)
		}
		return 0
	}
	if err := perf.Store(path, doc); err != nil {
		return fail(1, "%v", err)
	}
	fmt.Printf("wrote %s (revision %s)\n", path, cfg.Revision)
	return 0
}
