// Command nabbitbench regenerates the paper's experiments on the
// simulated NUMA machine.
//
// Usage:
//
//	nabbitbench -experiment fig6                 # one experiment
//	nabbitbench -experiment all                  # everything
//	nabbitbench -experiment fig7 -bench heat,cg  # restrict benchmarks
//	nabbitbench -experiment fig6 -cores 1,20,80 -csv
//	nabbitbench -experiment table2 -scale small  # quick run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nabbitc/internal/bench"
	"nabbitc/internal/bench/suite"
	"nabbitc/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all",
		fmt.Sprintf("experiment to run: %s, or all", strings.Join(harness.Experiments(), ", ")))
	benches := flag.String("bench", "",
		fmt.Sprintf("comma-separated benchmarks (default all: %s)", strings.Join(suite.Names(), ",")))
	cores := flag.String("cores", "", "comma-separated core counts (default 1,2,4,10,20,40,60,80)")
	scale := flag.String("scale", "default", "benchmark scale: default or small")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	cfg := harness.Config{Out: os.Stdout, CSV: *csv}
	switch *scale {
	case "default":
		cfg.Scale = bench.ScaleDefault
	case "small":
		cfg.Scale = bench.ScaleSmall
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	if *cores != "" {
		for _, c := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad core count %q\n", c)
				os.Exit(2)
			}
			cfg.Cores = append(cfg.Cores, n)
		}
	}
	if err := harness.Run(*experiment, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
