// Command nabbitvet runs the repo's custom static-analysis suite
// (internal/analysis): atomicbits, noalloc, nodeterminism, and
// lockdiscipline — the compile-time enforcement of the engine's
// concurrency, allocation, and determinism invariants.
//
// Standalone (the full suite, whole-program):
//
//	go run ./cmd/nabbitvet ./...
//	go run ./cmd/nabbitvet -run 'atomicbits|noalloc' ./internal/core
//
// As a go vet tool (per-package analyzers only; noalloc needs the
// whole-program view and is skipped):
//
//	go build -o /tmp/nabbitvet ./cmd/nabbitvet
//	go vet -vettool=/tmp/nabbitvet ./...
//
// Exit status: 0 clean, 1 findings or usage error (standalone), 2
// findings (vet-tool protocol, matching unitchecker).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"nabbitc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// selfHash content-hashes the running binary for the -V=full buildID.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func run(args []string) int {
	// cmd/go's vet-tool handshake: -V=full must print a version line
	// ending in a buildID= field (cmd/go caches vet results keyed on it —
	// a content hash of the tool binary makes edits invalidate the cache),
	// and -flags must report the tool's flag set (nabbitvet forwards none)
	// as JSON.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Printf("nabbitvet version devel buildID=%s\n", selfHash())
			return 0
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	// A single *.cfg argument is a vet-tool unit invocation.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.RunUnitchecker(args[0], analysis.All())
	}

	fs := flag.NewFlagSet("nabbitvet", flag.ContinueOnError)
	runRe := fs.String("run", "", "run only analyzers matching this regexp")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory to run the go tool in (module root)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nabbitvet [-run regexp] [-list] [-C dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	analyzers := analysis.All()
	if *runRe != "" {
		re, err := regexp.Compile(*runRe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nabbitvet: bad -run regexp: %v\n", err)
			return 1
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "nabbitvet: no analyzers selected")
		return 1
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nabbitvet: %v\n", err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nabbitvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
